// Command loadgen drives a serving experimentd with a reproducible open
// workload and reports the latency and cache-efficiency picture: burst-
// modulated Poisson arrivals (a two-state calm/burst process — the shape
// of a CI fleet's request stream, long quiet stretches punctuated by
// thundering herds) over a Zipf-skewed unit population (a few hot units
// take most of the traffic, the tail stays cold — exactly the skew a
// result cache exists for).
//
// Usage:
//
//	loadgen -target http://127.0.0.1:9300 -requests 500 -rate 200
//	loadgen -target URL -requests 1000 -rate 400 -burst 8 -skew 1.2 -json
//
// The unit population, the arrival times, and the request order are all
// derived from -seed, so two runs against equivalent servers issue the
// identical request sequence; only the measured latencies differ. Arrivals
// are open-loop: a slow server does not slow the generator down, it just
// accumulates in-flight requests — which is what makes the admission
// bound on the other side observable (429s are counted, waited out per
// Retry-After, and retried).
//
// The report (stdout, one JSON object with -json, aligned text otherwise)
// carries request percentiles (p50/p90/p99), the error and rejection
// counts, and the server-side cache hit rate and coalescing count diffed
// from /v1/stats before and after the run. scripts/bench_serve.sh wires
// this against a routed two-stored fleet and commits the result as
// BENCH_serve.json.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// unit mirrors session.Unit's wire form; loadgen speaks only the HTTP
// protocol, like any external client would.
type unit struct {
	Algo  string `json:"algo"`
	N     int    `json:"n"`
	Sched string `json:"sched"`
	Seed  int64  `json:"seed"`
}

// serverStats mirrors the /v1/stats reply fields the report diffs.
type serverStats struct {
	Store struct {
		Hits, Misses int64
	} `json:"store"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
	Served    int64 `json:"served"`
}

// report is the run's outcome, the row bench_serve.sh commits.
type report struct {
	Requests  int     `json:"requests"`
	Units     int     `json:"units"`
	RatePerS  float64 `json:"rate_per_s"`
	Burst     float64 `json:"burst"`
	Skew      float64 `json:"skew"`
	OK        int64   `json:"ok"`
	Errors    int64   `json:"errors"`
	Rejected  int64   `json:"rejected429"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	WallS     float64 `json:"wall_s"`
	HitRate   float64 `json:"hit_rate"`
	Coalesced int64   `json:"coalesced"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		target   = fs.String("target", "", "experimentd base URL (required), e.g. http://127.0.0.1:9300")
		requests = fs.Int("requests", 500, "total requests to issue")
		rate     = fs.Float64("rate", 200, "mean arrival rate in requests/second (calm state)")
		burst    = fs.Float64("burst", 6, "burst multiplier: arrival rate during the burst state")
		pBurst   = fs.Float64("p-burst", 0.15, "per-arrival probability of entering a burst (and of leaving one)")
		skew     = fs.Float64("skew", 1.1, "Zipf exponent over the unit population (>1; larger = hotter hot keys)")
		algosCSV = fs.String("algos", "yang-anderson,bakery,peterson,tas,mcs", "comma-separated algorithm population")
		nsCSV    = fs.String("ns", "4,8,16", "comma-separated process counts")
		seed     = fs.Int64("seed", 20060723, "seed for the population, the skew, and the arrival process")
		asJSON   = fs.Bool("json", false, "emit the report as one JSON object")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *target == "" {
		fs.Usage()
		return fmt.Errorf("-target is required")
	}
	if *requests < 1 || *rate <= 0 || *burst < 1 || *skew <= 1 {
		return fmt.Errorf("need -requests >= 1, -rate > 0, -burst >= 1, -skew > 1")
	}

	// The unit population: every (algo, n) cell under the canonical
	// scheduler. Zipf over the shuffled population gives hot cells that are
	// a seed-stable but arbitrary subset — not always the cheapest ones.
	var units []unit
	for _, algo := range splitCSV(*algosCSV) {
		for _, ns := range splitCSV(*nsCSV) {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 2 {
				return fmt.Errorf("bad process count %q", ns)
			}
			units = append(units, unit{Algo: algo, N: n, Sched: "round-robin", Seed: 1})
		}
	}
	if len(units) == 0 {
		return fmt.Errorf("empty unit population")
	}
	rng := rand.New(rand.NewSource(*seed))
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })
	zipf := rand.NewZipf(rng, *skew, 1, uint64(len(units)-1))

	// Pre-draw the whole request sequence — which unit, and the arrival
	// offset — so the workload is a pure function of the flags and the
	// measurement loop does no RNG work.
	type arrival struct {
		u  unit
		at time.Duration
	}
	plan := make([]arrival, *requests)
	var clock time.Duration
	bursting := false
	for i := range plan {
		if rng.Float64() < *pBurst {
			bursting = !bursting
		}
		lambda := *rate
		if bursting {
			lambda *= *burst
		}
		clock += time.Duration(rng.ExpFloat64() / lambda * float64(time.Second))
		plan[i] = arrival{u: units[zipf.Uint64()], at: clock}
	}

	before, err := fetchStats(*target)
	if err != nil {
		return fmt.Errorf("target unreachable: %w", err)
	}

	// Open-loop dispatch: every request fires at its planned offset no
	// matter how the previous ones are doing.
	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		latencies            []time.Duration
		okN, errN, rejectedN int64
	)
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now() //repro:wallclock the measurement clock; latencies never feed canonical repro output
	for _, a := range plan {
		time.Sleep(a.at - time.Since(start)) //repro:wallclock open-loop pacing against the measurement clock
		wg.Add(1)
		go func(u unit) {
			defer wg.Done()
			lat, status, err := post(client, *target, u)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				errN++
			case status == http.StatusTooManyRequests:
				rejectedN++
			case status == http.StatusOK:
				okN++
				latencies = append(latencies, lat)
			default:
				errN++
			}
		}(a.u)
	}
	wg.Wait()
	wall := time.Since(start) //repro:wallclock total run duration for the report

	after, err := fetchStats(*target)
	if err != nil {
		return fmt.Errorf("target lost after run: %w", err)
	}

	rep := report{
		Requests: *requests, Units: len(units), RatePerS: *rate, Burst: *burst, Skew: *skew,
		OK: okN, Errors: errN, Rejected: rejectedN,
		WallS:     wall.Seconds(),
		Coalesced: after.Coalesced - before.Coalesced,
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		rep.P50Ms = ms(percentile(latencies, 0.50))
		rep.P90Ms = ms(percentile(latencies, 0.90))
		rep.P99Ms = ms(percentile(latencies, 0.99))
		rep.MeanMs = ms(sum / time.Duration(len(latencies)))
	}
	hits := after.Store.Hits - before.Store.Hits
	misses := after.Store.Misses - before.Store.Misses
	if gets := hits + misses; gets > 0 {
		rep.HitRate = float64(hits) / float64(gets)
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "requests   %d over %d units (%.0f/s calm, ×%.0f burst, zipf %.2f)\n",
		rep.Requests, rep.Units, rep.RatePerS, rep.Burst, rep.Skew)
	fmt.Fprintf(w, "outcome    ok=%d rejected429=%d errors=%d in %.2fs\n", rep.OK, rep.Rejected, rep.Errors, rep.WallS)
	fmt.Fprintf(w, "latency    p50=%.2fms p90=%.2fms p99=%.2fms mean=%.2fms\n", rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MeanMs)
	fmt.Fprintf(w, "cache      hitRate=%.3f coalesced=%d\n", rep.HitRate, rep.Coalesced)
	return nil
}

// post issues one unit request, returning its latency and status.
func post(client *http.Client, target string, u unit) (time.Duration, int, error) {
	body, err := json.Marshal(u)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now() //repro:wallclock per-request latency measurement
	resp, err := client.Post(target+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	lat := time.Since(start) //repro:wallclock per-request latency measurement
	return lat, resp.StatusCode, err
}

// fetchStats reads the server's /v1/stats counters.
func fetchStats(target string) (serverStats, error) {
	var s serverStats
	resp, err := http.Get(target + "/v1/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("/v1/stats: %s", resp.Status)
	}
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

// percentile reads the p-quantile off sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
