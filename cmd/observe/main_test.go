package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/store"
)

// captureOne runs one job with capture on into a file-backed store and
// returns the store directory and the captured key.
func captureOne(t *testing.T) (dir, key string) {
	t.Helper()
	dir = t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := store.OpenFileBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetBlobs(fb)
	j := runner.Job{Algo: "yang-anderson", N: 3, Sched: machine.RoundRobinSpec()}
	eng := runner.NewCached(runner.New(1), st).WithCapture(true)
	if err := eng.Run([]runner.Job{j}, func(r runner.Result) error { return r.Err }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, j.CacheKey()
}

func observe(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("observe %v: %v", args, err)
	}
	return out.String()
}

func TestObserveViews(t *testing.T) {
	dir, key := captureOne(t)

	list := observe(t, "-cache", dir, "-list")
	if !strings.Contains(list, key) || !strings.Contains(list, "algo=yang-anderson n=3") {
		t.Fatalf("-list missing the captured trace:\n%s", list)
	}

	full := observe(t, "-cache", dir, key)
	for _, want := range []string{"trace " + key, "algo=yang-anderson n=3", "p0", "CS-interval"} {
		if !strings.Contains(full, want) {
			t.Errorf("default view missing %q:\n%s", want, full)
		}
	}

	heat := observe(t, "-cache", dir, "-heatmap", key)
	if !strings.Contains(heat, "register") || !strings.Contains(heat, "charged") {
		t.Errorf("heatmap missing header:\n%s", heat)
	}

	meta := observe(t, "-cache", dir, "-metasteps", key)
	if !strings.Contains(meta, "metasteps over") {
		t.Errorf("metasteps missing footer:\n%s", meta)
	}

	capped := observe(t, "-cache", dir, "-max", "5", key)
	if len(capped) >= len(full) {
		t.Errorf("-max 5 did not shorten the timeline (%d vs %d bytes)", len(capped), len(full))
	}
}

func TestObserveRejectsMissingKeyAndMount(t *testing.T) {
	if err := run([]string{"-list"}, &bytes.Buffer{}); err == nil {
		t.Error("no -cache/-store accepted")
	}
	dir, _ := captureOne(t)
	if err := run([]string{"-cache", dir, strings.Repeat("0", 64)}, &bytes.Buffer{}); err == nil {
		t.Error("unknown key accepted")
	}
	if err := run([]string{"-cache", dir}, &bytes.Buffer{}); err == nil {
		t.Error("missing KEY argument accepted")
	}
}
