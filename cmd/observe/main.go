// Command observe streams captured execution traces — the blobs the
// -capture flag of cmd/experiments and cmd/tournament persists — without
// re-simulating anything: every view below is rendered by re-applying the
// recorded steps through the machine's replayer, from a local store or a
// routed fleet.
//
// Usage:
//
//	observe -cache DIR -list            # enumerate captured traces
//	observe -cache DIR KEY              # per-process timeline + summary
//	observe -cache DIR -summary KEY     # per-process totals only
//	observe -cache DIR -heatmap KEY     # per-register access heatmap
//	observe -cache DIR -metasteps KEY   # state-change (metastep) boundaries
//	observe -store URL KEY              # fetch the trace from a fleet
//	observe -cache DIR -max 200 KEY     # cap the timeline length
//
// Keys are the same content addresses the result store uses — the key a
// run's -capture stored is the key its result is cached under, so a row in
// any experiment table can be traced back to the exact execution that
// produced it. Every trace is verified against a fresh replayer before it
// is rendered: a blob that does not replay to the recorded cost bit for
// bit is refused, never displayed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "observe:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("observe", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		list      = fs.Bool("list", false, "enumerate captured traces (key, algorithm, n, steps) and exit")
		summary   = fs.Bool("summary", false, "print only the per-process summary")
		heatmap   = fs.Bool("heatmap", false, "print only the per-register access heatmap")
		metasteps = fs.Bool("metasteps", false, "print only the state-change (metastep) boundaries")
		maxSteps  = fs.Int("max", 0, "cap the rendered timeline at this many steps (0 = all)")
	)
	sf := session.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	s, err := session.Open(sf.Config("observe"))
	if err != nil {
		return err
	}
	defer s.Close()
	st := s.Store()
	if st == nil {
		fs.Usage()
		return fmt.Errorf("traces live in a store: pass -cache DIR and/or -store URL")
	}

	if *list {
		return listTraces(w, st)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one KEY argument expected (or -list); got %d", fs.NArg())
	}
	key := fs.Arg(0)
	rec, f, sc, err := load(st, key)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s\nalgo=%s n=%d steps=%d sc=%d\n\n", key, rec.Algo, rec.N, len(rec.Exec), sc)

	views := 0
	if *summary {
		views++
		if err := summaryView(w, f, rec); err != nil {
			return err
		}
	}
	if *heatmap {
		views++
		if err := heatmapView(w, f, rec); err != nil {
			return err
		}
	}
	if *metasteps {
		views++
		if err := metastepView(w, f, rec); err != nil {
			return err
		}
	}
	if views == 0 {
		tl, err := trace.Timeline(f, rec.Exec, trace.Options{MaxSteps: *maxSteps, RegisterName: regNamer(f)})
		if err != nil {
			return err
		}
		fmt.Fprint(w, tl)
		fmt.Fprintln(w)
		if err := summaryView(w, f, rec); err != nil {
			return err
		}
	}
	return nil
}

// load fetches, decodes and verifies one captured trace.
func load(st *store.Store, key string) (trace.Record, program.Factory, int, error) {
	blob, ok := st.BlobGet(key)
	if !ok {
		return trace.Record{}, nil, 0, fmt.Errorf("no captured trace under %s (capture one with `experiments -capture` or `tournament -capture`)", key)
	}
	rec, err := trace.DecodeRecord(blob)
	if err != nil {
		return trace.Record{}, nil, 0, fmt.Errorf("%s: %w", key, err)
	}
	f, err := runner.NewFactory(rec.Algo, rec.N)
	if err != nil {
		return trace.Record{}, nil, 0, fmt.Errorf("%s: %w", key, err)
	}
	sc, err := trace.VerifyRecord(f, rec)
	if err != nil {
		return trace.Record{}, nil, 0, fmt.Errorf("%s: %w", key, err)
	}
	return rec, f, sc, nil
}

// listTraces enumerates the blob tier, decoding each trace for its
// coordinates — the fastest way to find a key worth replaying.
func listTraces(w io.Writer, st *store.Store) error {
	keys := st.BlobKeys()
	if keys == nil {
		return fmt.Errorf("this mount cannot enumerate traces (fleet blob tiers fetch by key); list against the server's own -cache directory")
	}
	for _, k := range keys {
		blob, ok := st.BlobGet(k)
		if !ok {
			continue
		}
		rec, err := trace.DecodeRecord(blob)
		if err != nil {
			fmt.Fprintf(w, "%s  (undecodable: %v)\n", k, err)
			continue
		}
		fmt.Fprintf(w, "%s  algo=%s n=%d steps=%d\n", k, rec.Algo, rec.N, len(rec.Exec))
	}
	fmt.Fprintf(os.Stderr, "observe: %d captured trace(s)\n", len(keys)) //repro:degrade diagnostic line on stderr
	return nil
}

// regNamer resolves register names when the factory exposes a layout
// (the register-only algorithms of internal/mutex); r%d otherwise.
func regNamer(f program.Factory) func(model.RegID) string {
	lf, ok := f.(interface{ Layout() *mutex.Layout })
	if !ok {
		return nil // trace.Options falls back to r%d
	}
	return func(r model.RegID) string {
		if name := lf.Layout().Name(r); name != "" {
			return name
		}
		return fmt.Sprintf("r%d", r)
	}
}

// summaryView prints the per-process totals.
func summaryView(w io.Writer, f program.Factory, rec trace.Record) error {
	sum, err := trace.Summary(f, rec.Exec)
	if err != nil {
		return err
	}
	fmt.Fprint(w, sum)
	return nil
}

// heatmapView aggregates shared accesses per register: how often each was
// read, written, RMW'd, and how many of those accesses the SC model
// charged — the register contention picture of the run, with a bar scaled
// to the busiest register.
func heatmapView(w io.Writer, f program.Factory, rec trace.Record) error {
	type cell struct{ reads, writes, rmws, charged int }
	var maxReg model.RegID
	for _, s := range rec.Exec {
		if s.IsShared() && s.Reg > maxReg {
			maxReg = s.Reg
		}
	}
	cells := make([]cell, int(maxReg)+1)
	rep := machine.NewReplayer(f)
	for t, s := range rec.Exec {
		before := rep.SCCost()
		done, err := rep.Apply(s)
		if err != nil {
			return fmt.Errorf("heatmap: step %d: %w", t, err)
		}
		if !done.IsShared() {
			continue
		}
		c := &cells[done.Reg]
		switch done.Kind {
		case model.KindRead:
			c.reads++
		case model.KindWrite:
			c.writes++
		case model.KindRMW:
			c.rmws++
		}
		if rep.SCCost() != before {
			c.charged++
		}
	}
	busiest := 1
	for _, c := range cells {
		if t := c.reads + c.writes + c.rmws; t > busiest {
			busiest = t
		}
	}
	name := regNamer(f)
	if name == nil {
		name = func(r model.RegID) string { return fmt.Sprintf("r%d", r) }
	}
	fmt.Fprintf(w, "%-16s %7s %7s %7s %8s  load\n", "register", "reads", "writes", "rmws", "charged")
	for r, c := range cells {
		total := c.reads + c.writes + c.rmws
		if total == 0 {
			continue
		}
		bar := (total*32 + busiest - 1) / busiest
		fmt.Fprintf(w, "%-16s %7d %7d %7d %8d  %s\n",
			name(model.RegID(r)), c.reads, c.writes, c.rmws, c.charged,
			"##################################"[:bar])
	}
	return nil
}

// metastepView prints the run's state-change boundaries: each step the SC
// model charged opens a metastep, and the free steps that follow (local
// spins re-reading an unchanged register) belong to it. The step spans
// show how much real time each unit of SC cost absorbs — the busywait
// discount of the model, made visible.
func metastepView(w io.Writer, f program.Factory, rec trace.Record) error {
	rep := machine.NewReplayer(f)
	name := regNamer(f)
	if name == nil {
		name = func(r model.RegID) string { return fmt.Sprintf("r%d", r) }
	}
	describe := func(s model.Step) string {
		if s.Kind == model.KindCrit {
			return fmt.Sprintf("p%d %s", s.Proc, s.Crit)
		}
		return fmt.Sprintf("p%d %s %s", s.Proc, s.Kind, name(s.Reg))
	}
	fmt.Fprintf(w, "%-6s %-14s %6s  boundary\n", "meta", "steps", "free")
	meta, start := 0, 0
	var boundary string
	flush := func(end int) {
		if boundary == "" {
			if end > start {
				fmt.Fprintf(w, "%-6s [%d..%d] %6d  (uncharged prelude)\n", "-", start, end-1, end-start)
			}
			return
		}
		fmt.Fprintf(w, "%-6d [%d..%d] %6d  %s\n", meta, start, end-1, end-start-1, boundary)
		meta++
	}
	for t, s := range rec.Exec {
		before := rep.SCCost()
		done, err := rep.Apply(s)
		if err != nil {
			return fmt.Errorf("metasteps: step %d: %w", t, err)
		}
		if rep.SCCost() != before {
			flush(t)
			start, boundary = t, describe(done)
		}
	}
	flush(len(rec.Exec))
	fmt.Fprintf(w, "%d metasteps over %d steps\n", meta, len(rec.Exec))
	return nil
}
