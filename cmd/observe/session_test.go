package main

import (
	"testing"

	"repro/internal/session/sessiontest"
)

// TestSessionFlagValidation drives the shared bad-combination table: this
// binary must reject exactly what every other session-backed binary
// rejects, with the same words.
func TestSessionFlagValidation(t *testing.T) { sessiontest.Run(t, run) }
