package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The acceptance matrix for the result store at the binary level: the
// -json stream must be byte-identical across cold runs at every worker
// count, warm-cache replays at every worker count, and
// sharded-then-merged replays at shard counts 1 and 3. A small but
// representative selection keeps the matrix affordable: E2 exercises the
// cached job layer, E4 the cached sweep layer, E12 the post-fold fitting
// that must be skipped by prime passes, E13 the cached schedule-search
// layer.
const cacheTestOnly = "E2,E4,E12,E13"

func runArgs(t *testing.T, args ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(append([]string{"-quick", "-only", cacheTestOnly, "-json"}, args...), &buf); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.Bytes()
}

func TestJSONByteIdenticalColdWarmShardedMerged(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism matrix skipped in -short mode")
	}
	cold := runArgs(t, "-parallel", "1")
	for _, w := range []int{4, 8} {
		if got := runArgs(t, "-parallel", fmt.Sprint(w)); !bytes.Equal(got, cold) {
			t.Fatalf("cold run at -parallel %d differs from sequential:\n%s\nvs\n%s", w, got, cold)
		}
	}

	// Warm cache: populate once, then replay at several worker counts.
	warmDir := t.TempDir()
	runArgs(t, "-cache", warmDir, "-parallel", "4")
	for _, w := range []int{1, 4, 8} {
		if got := runArgs(t, "-cache", warmDir, "-parallel", fmt.Sprint(w)); !bytes.Equal(got, cold) {
			t.Fatalf("warm replay at -parallel %d differs from cold run:\n%s\nvs\n%s", w, got, cold)
		}
	}

	// Sharded then merged: m prime passes into disjoint stores (no stdout),
	// one merge replay producing the canonical stream.
	for _, m := range []int{1, 3} {
		dirs := make([]string, m)
		for i := range dirs {
			dirs[i] = t.TempDir()
			var buf bytes.Buffer
			err := run([]string{
				"-quick", "-only", cacheTestOnly, "-json",
				"-cache", dirs[i], "-shard", fmt.Sprintf("%d/%d", i+1, m), "-parallel", "4",
			}, &buf)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i+1, m, err)
			}
			if buf.Len() != 0 {
				t.Fatalf("shard %d/%d wrote %d bytes to the data stream, want none:\n%s", i+1, m, buf.Len(), buf.String())
			}
		}
		mergeDir := t.TempDir()
		merged := runArgs(t, "-cache", mergeDir, "-merge", strings.Join(dirs, ","), "-parallel", "8")
		if !bytes.Equal(merged, cold) {
			t.Fatalf("sharded(%d)-then-merged output differs from cold run:\n%s\nvs\n%s", m, merged, cold)
		}
	}
}

// TestOnlyFailsLoudly pins the -only contract: unknown and duplicate
// experiment IDs are refused with a non-zero error instead of silently
// measuring something else.
func TestOnlyFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E1,E99"}, &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	if err := run([]string{"-only", "e2"}, &buf); err == nil {
		t.Fatal("miscased experiment id accepted")
	}
	if err := run([]string{"-only", "E1,E2,E1"}, &buf); err == nil {
		t.Fatal("duplicate experiment id accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("error paths wrote to the data stream: %q", buf.String())
	}
}

// TestShardAndMergeFlagValidation pins the flag plumbing error paths.
func TestShardAndMergeFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-shard", "1/3"}, &buf); err == nil {
		t.Fatal("-shard without -cache accepted")
	}
	if err := run([]string{"-merge", "x"}, &buf); err == nil {
		t.Fatal("-merge without -cache accepted")
	}
	if err := run([]string{"-cache", t.TempDir(), "-shard", "4/3"}, &buf); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := run([]string{"-cache", t.TempDir(), "-shard", "0/0"}, &buf); err == nil {
		t.Fatal("zero shard count accepted")
	}
	for _, bad := range []string{"1/2/3", "1/2x", "x1/2", "1-2", "1"} {
		if err := run([]string{"-cache", t.TempDir(), "-shard", bad}, &buf); err == nil {
			t.Fatalf("malformed -shard %q accepted", bad)
		}
	}
	if err := run([]string{"-cache", t.TempDir(), "-shard", "1/2", "-merge", "x"}, &buf); err == nil {
		t.Fatal("-shard combined with -merge accepted")
	}
}
