// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1–E13): the machine-checked reproductions of the paper's theorems,
// lemmas, and positioning claims.
//
// Usage:
//
//	experiments                 # full scale, all experiments, GOMAXPROCS workers
//	experiments -quick          # reduced sweeps
//	experiments -only E5        # one experiment
//	experiments -only E1,E5,E9  # a selection
//	experiments -parallel 1     # force the sequential path (same bytes)
//	experiments -json           # machine-readable output, one object per table
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// jsonTable is the -json wire form of one experiment result.
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Pass    bool       `json:"pass"`
	Seconds float64    `json:"seconds"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		quick    = fs.Bool("quick", false, "reduced sweep sizes")
		only     = fs.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E5); empty runs all")
		seed     = fs.Int64("seed", 20060723, "seed for sampled permutations and schedules")
		parallel = fs.Int("parallel", 0, "worker pool size; 0 = GOMAXPROCS, 1 = sequential (identical output)")
		asJSON   = fs.Bool("json", false, "emit each table as a JSON object instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments.All() {
		known[e.ID] = true
	}
	for id := range selected {
		if !known[id] {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *parallel}
	enc := json.NewEncoder(w)
	failures := 0
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Seconds()
		if *asJSON {
			if err := enc.Encode(jsonTable{
				ID: tbl.ID, Title: tbl.Title, Claim: tbl.Claim,
				Header: tbl.Header, Rows: tbl.Rows, Notes: tbl.Notes,
				Pass: tbl.Pass, Seconds: elapsed,
			}); err != nil {
				return err
			}
		} else {
			fmt.Fprint(w, tbl.Format())
			fmt.Fprintf(w, "   (%.2fs)\n\n", elapsed)
		}
		if !tbl.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape checks", failures)
	}
	return nil
}
