// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1–E9): the machine-checked reproductions of the paper's theorems,
// lemmas, and positioning claims.
//
// Usage:
//
//	experiments            # full scale (about a minute)
//	experiments -quick     # reduced sweeps
//	experiments -only E5   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "reduced sweep sizes")
		only  = flag.String("only", "", "run a single experiment by ID (E1..E9)")
		seed  = flag.Int64("seed", 20060723, "seed for sampled permutations and schedules")
	)
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	failures := 0
	for _, e := range experiments.All() {
		if *only != "" && e.ID != *only {
			continue
		}
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("   (%.2fs)\n\n", time.Since(start).Seconds())
		if !tbl.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape checks", failures)
	}
	return nil
}
