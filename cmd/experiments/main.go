// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1–E13): the machine-checked reproductions of the paper's theorems,
// lemmas, and positioning claims.
//
// Usage:
//
//	experiments                 # full scale, all experiments, GOMAXPROCS workers
//	experiments -quick          # reduced sweeps
//	experiments -only E5        # one experiment
//	experiments -only E1,E5,E9  # a selection
//	experiments -parallel 1     # force the sequential path (same bytes)
//	experiments -json           # machine-readable output, one object per table
//
// Caching and sharding (see README "The result store"):
//
//	experiments -cache DIR               # memoize every simulation unit; a
//	                                     # warm re-run simulates nothing and
//	                                     # prints byte-identical tables
//	experiments -cache D1 -shard 1/3     # prime pass: execute only shard 1's
//	                                     # missing keys into D1, print no
//	                                     # tables (run one process per shard)
//	experiments -cache DIR -merge D1,D2,D3
//	                                     # fold the shard stores into DIR and
//	                                     # replay the whole suite from cache,
//	                                     # producing the canonical table
//
// Fleet-shared caching (see README "The remote store"): -store mounts a
// stored service (cmd/stored) as the result store, so any number of
// processes on any number of machines share one authoritative cache:
//
//	experiments -store http://ci-store:9200          # read+write the fleet store
//	experiments -store URL1,URL2,URL3                # a sharded fleet tier: each
//	                                                 # key lives on exactly one
//	                                                 # instance, batches split per
//	                                                 # replica, a down replica
//	                                                 # degrades to misses
//	experiments -store URL -shard 1/3                # prime shard 1 against it
//	                                                 # (run one process per shard,
//	                                                 # anywhere on the fleet)
//	experiments -cache DIR -store URL                # DIR as a local near tier:
//	                                                 # each key is fetched from
//	                                                 # the fleet store once, ever
//	experiments -cache DIR -store URL -merge D1,D2   # push local shard stores
//	                                                 # up to the fleet store
//
// Observability (see README "Observability"): -capture persists every
// executed unit's step log into the store's blob tier, keyed by the same
// content address as its result; -replay KEY re-materializes one captured
// execution — verified against the machine's replayer, rendered as a
// per-process timeline plus summary — with zero re-simulation. cmd/observe
// browses the same blobs interactively.
//
//	experiments -quick -cache DIR -capture   # capture while running
//	experiments -cache DIR -replay KEY       # replay one stored execution
//
// Tables go to stdout; timing, cache statistics and diagnostics go to
// stderr, so stdout is byte-identical across cold, warm, and
// sharded-then-merged runs at any -parallel setting.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// jsonTable is the -json wire form of one experiment result. It carries no
// timing — the data stream must be a pure function of the experiment
// inputs; per-table seconds are printed to stderr.
type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Claim  string     `json:"claim"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	Pass   bool       `json:"pass"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		quick  = fs.Bool("quick", false, "reduced sweep sizes")
		only   = fs.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E5); empty runs all")
		seed   = fs.Int64("seed", 20060723, "seed for sampled permutations and schedules")
		asJSON = fs.Bool("json", false, "emit each table as a JSON object instead of aligned text")
		replay = fs.String("replay", "", "KEY: re-materialize the captured execution stored under KEY (timeline + summary, zero re-simulation) and exit")
	)
	sf := session.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	s, err := session.Open(sf.Config("experiments"))
	if err != nil {
		return err
	}
	defer s.Close()

	// -only must fail loudly on typos: an unknown or duplicate ID means the
	// invocation is not measuring what its author thinks it is.
	known := map[string]bool{}
	knownIDs := make([]string, 0, len(experiments.All()))
	for _, e := range experiments.All() {
		known[e.ID] = true
		knownIDs = append(knownIDs, e.ID)
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id == "" {
			continue
		}
		if !known[id] {
			fs.Usage()
			return fmt.Errorf("unknown experiment %q in -only (known: %s)", id, strings.Join(knownIDs, ","))
		}
		if selected[id] {
			fs.Usage()
			return fmt.Errorf("duplicate experiment %q in -only", id)
		}
		selected[id] = true
	}

	if *replay != "" {
		if s.Store() == nil {
			return fmt.Errorf("-replay requires -cache or -store")
		}
		return replayKey(w, s.Store(), *replay)
	}
	shardI, shardM := s.Shard()
	priming := s.Priming()

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Engine: s.Engine()}
	enc := json.NewEncoder(w)
	failures := 0
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now() //repro:wallclock elapsed time goes to the stderr progress line, never into a table
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Seconds() //repro:wallclock elapsed time goes to the stderr progress line, never into a table
		if priming {
			// A prime pass only fills the store; its tables fold nothing and
			// carry no verdicts.
			fmt.Fprintf(os.Stderr, "experiments: primed %s shard %d/%d (%.2fs)\n", e.ID, shardI+1, shardM, elapsed)
			continue
		}
		fmt.Fprintf(os.Stderr, "experiments: %s (%.2fs)\n", e.ID, elapsed)
		if *asJSON {
			if err := enc.Encode(jsonTable{
				ID: tbl.ID, Title: tbl.Title, Claim: tbl.Claim,
				Header: tbl.Header, Rows: tbl.Rows, Notes: tbl.Notes,
				Pass: tbl.Pass,
			}); err != nil {
				return err
			}
		} else {
			fmt.Fprint(w, tbl.Format())
			fmt.Fprintln(w)
		}
		if !tbl.Pass {
			failures++
		}
	}
	if priming {
		return nil
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape checks", failures)
	}
	return nil
}

// replayKey re-materializes one captured execution from the store's blob
// tier: decode, verify every step against a fresh replayer (zero
// re-simulation — the machine only re-applies the recorded steps), then
// render the timeline and per-process summary to stdout. The stderr line
// carries the step and SC counts for scripts to grep.
func replayKey(w io.Writer, st *store.Store, key string) error {
	blob, ok := st.BlobGet(key)
	if !ok {
		return fmt.Errorf("no captured trace under %s (capture one with -capture)", key)
	}
	rec, err := trace.DecodeRecord(blob)
	if err != nil {
		return fmt.Errorf("replay %s: %w", key, err)
	}
	f, err := runner.NewFactory(rec.Algo, rec.N)
	if err != nil {
		return fmt.Errorf("replay %s: %w", key, err)
	}
	sc, err := trace.VerifyRecord(f, rec)
	if err != nil {
		return fmt.Errorf("replay %s: %w", key, err)
	}
	tl, err := trace.Timeline(f, rec.Exec, trace.Options{})
	if err != nil {
		return fmt.Errorf("replay %s: %w", key, err)
	}
	sum, err := trace.Summary(f, rec.Exec)
	if err != nil {
		return fmt.Errorf("replay %s: %w", key, err)
	}
	fmt.Fprintf(w, "replay %s\nalgo=%s n=%d steps=%d sc=%d\n\n", key, rec.Algo, rec.N, len(rec.Exec), sc)
	fmt.Fprint(w, tl)
	fmt.Fprintln(w)
	fmt.Fprint(w, sum)
	fmt.Fprintf(os.Stderr, "experiments: replayed %s steps=%d sc=%d\n", key, len(rec.Exec), sc) //repro:degrade diagnostic line on stderr
	return nil
}
