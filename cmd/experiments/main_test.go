package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSmokeJSON exercises the run() path end to end on one cheap
// experiment and checks the -json wire form parses with a PASS verdict.
func TestRunSmokeJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 table, got %d lines", len(lines))
	}
	var tbl jsonTable
	if err := json.Unmarshal([]byte(lines[0]), &tbl); err != nil {
		t.Fatalf("unparseable table %q: %v", lines[0], err)
	}
	if tbl.ID != "E2" || !tbl.Pass || len(tbl.Rows) == 0 {
		t.Fatalf("bad table: %+v", tbl)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E99"}, &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
