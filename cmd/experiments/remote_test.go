package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/remote"
	"repro/internal/store"
)

// TestRemoteStoreFleetByteIdentical is the acceptance matrix for the
// fleet-shared store at the binary level: two concurrent clients prime
// disjoint shards against one stored service, after which replays through
// the remote store are byte-identical to a cold local sequential run at
// workers 1, 4 and 8 — and a warm re-run executes zero simulations, pinned
// here as "the server saw zero additional writes and holds zero additional
// entries".
func TestRemoteStoreFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism matrix skipped in -short mode")
	}
	cold := runArgs(t, "-parallel", "1")

	authoritative, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer authoritative.Close()
	srv := remote.NewServer(authoritative)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two concurrent worker processes, each priming its shard of the key
	// space into the shared store. (Within this test they are goroutines
	// driving the full binary entrypoint; the CI smoke job runs the same
	// flow as two OS processes.)
	var wg sync.WaitGroup
	shardOut := make([]bytes.Buffer, 2)
	shardErr := make([]error, 2)
	for i := range shardOut {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shardErr[i] = run([]string{
				"-quick", "-only", cacheTestOnly, "-json",
				"-store", ts.URL, "-shard", fmt.Sprintf("%d/2", i+1), "-parallel", "4",
			}, &shardOut[i])
		}(i)
	}
	wg.Wait()
	for i := range shardErr {
		if shardErr[i] != nil {
			t.Fatalf("shard %d/2: %v", i+1, shardErr[i])
		}
		if shardOut[i].Len() != 0 {
			t.Fatalf("shard %d/2 wrote %d bytes to the data stream, want none", i+1, shardOut[i].Len())
		}
	}
	if got := srv.Conflicts(); got != 0 {
		t.Fatalf("content-addressed writers conflicted %d times", got)
	}

	// Replays through the shared store: byte-identical to the cold local
	// run at every worker count.
	for _, w := range []int{1, 4, 8} {
		if got := runArgs(t, "-store", ts.URL, "-parallel", fmt.Sprint(w)); !bytes.Equal(got, cold) {
			t.Fatalf("fleet replay at -parallel %d differs from cold local run:\n%s\nvs\n%s", w, got, cold)
		}
	}

	// Warm re-runs over the remote store execute zero simulations: every
	// result a simulation would produce is already served, so the server
	// sees no new writes and stores no new entries.
	entries := authoritative.Len()
	req := srv.Requests()
	if got := runArgs(t, "-store", ts.URL, "-parallel", "4"); !bytes.Equal(got, cold) {
		t.Fatal("warm fleet re-run diverged")
	}
	reqAfter := srv.Requests()
	if reqAfter.Put != req.Put || reqAfter.MPut != req.MPut {
		t.Fatalf("warm re-run wrote to the store (put %d→%d, mput %d→%d): simulations executed",
			req.Put, reqAfter.Put, req.MPut, reqAfter.MPut)
	}
	if got := authoritative.Len(); got != entries {
		t.Fatalf("warm re-run grew the store %d→%d entries", entries, got)
	}

	// -cache composes with -store as a local near tier: the first tiered
	// run pulls each key down once; a second tiered run does not consult
	// the fleet store at all.
	nearDir := t.TempDir()
	if got := runArgs(t, "-cache", nearDir, "-store", ts.URL, "-parallel", "4"); !bytes.Equal(got, cold) {
		t.Fatal("tiered replay diverged")
	}
	req = srv.Requests()
	if got := runArgs(t, "-cache", nearDir, "-store", ts.URL, "-parallel", "4"); !bytes.Equal(got, cold) {
		t.Fatal("near-tier replay diverged")
	}
	reqAfter = srv.Requests()
	if reqAfter.Get != req.Get || reqAfter.MGet != req.MGet {
		t.Fatalf("near-tier replay still consulted the fleet store (get %d→%d, mget %d→%d)",
			req.Get, reqAfter.Get, req.MGet, reqAfter.MGet)
	}
}

// TestRouterFleetFailoverDeterminism is the acceptance matrix for the
// multi-store router at the binary level: a -store URL1,URL2,URL3 run
// spreads the key space across three stored instances with all writes
// batched (zero point puts), replays byte-identically to a cold local run,
// keeps producing the exact same bytes at workers 1/4/8 while one replica
// is down (its keys degrade to misses and re-execute), and reports zero
// re-executions once the replica is healthy again.
func TestRouterFleetFailoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("router failover matrix skipped in -short mode")
	}
	const only = "E2,E4"
	runOnly := func(t *testing.T, args ...string) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := run(append([]string{"-quick", "-only", only, "-json"}, args...), &buf); err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		return buf.Bytes()
	}
	cold := runOnly(t, "-parallel", "1")

	// Three stored instances. Each can be marked sick: data operations fail
	// (500) while /v1/stats keeps answering — the half-alive replica that a
	// health check misses, which is exactly when degrade-to-miss must hold.
	const replicas = 3
	stores := make([]*store.Store, replicas)
	servers := make([]*remote.Server, replicas)
	sick := make([]atomic.Bool, replicas)
	urls := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		servers[i] = remote.NewServer(st)
		srv, i := servers[i], i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if sick[i].Load() && r.URL.Path != "/v1/stats" {
				http.Error(w, "replica down", http.StatusInternalServerError)
				return
			}
			srv.ServeHTTP(w, r)
		}))
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			st.Close()
		})
	}
	storeList := strings.Join(urls, ",")

	// Cold run through the router: byte-identical, key space spread across
	// every replica, and the prime path's writes travel as batched mputs —
	// not one synchronous put per executed unit.
	if got := runOnly(t, "-store", storeList, "-parallel", "4"); !bytes.Equal(got, cold) {
		t.Fatalf("routed cold run differs from local cold run:\n%s\nvs\n%s", got, cold)
	}
	total := 0
	for i, st := range stores {
		n := st.Len()
		if n == 0 {
			t.Fatalf("replica %d holds no keys — routing is degenerate", i)
		}
		total += n
		if req := servers[i].Requests(); req.Put != 0 || req.MPut == 0 {
			t.Fatalf("replica %d saw put=%d mput=%d, want batched writes only", i, req.Put, req.MPut)
		}
	}

	// One replica down: its keys miss and re-execute, the output bytes do
	// not move, at any worker count.
	sick[1].Store(true)
	for _, w := range []int{1, 4, 8} {
		if got := runOnly(t, "-store", storeList, "-parallel", fmt.Sprint(w)); !bytes.Equal(got, cold) {
			t.Fatalf("failover run at -parallel %d differs from cold run", w)
		}
	}
	sick[1].Store(false)

	// Healthy again: a warm run serves everything from the fleet tier —
	// no writes, no entry growth anywhere (the re-executions during the
	// outage deduplicated against the replica's existing entries).
	before := make([]remote.RequestStats, replicas)
	for i := range servers {
		before[i] = servers[i].Requests()
	}
	if got := runOnly(t, "-store", storeList, "-parallel", "4"); !bytes.Equal(got, cold) {
		t.Fatal("post-recovery warm run diverged")
	}
	warmTotal := 0
	for i := range servers {
		after := servers[i].Requests()
		if after.Put != before[i].Put || after.MPut != before[i].MPut {
			t.Fatalf("replica %d: warm run wrote (put %d→%d, mput %d→%d): simulations executed",
				i, before[i].Put, after.Put, before[i].MPut, after.MPut)
		}
		warmTotal += stores[i].Len()
	}
	if warmTotal != total {
		t.Fatalf("warm run grew the fleet %d→%d entries", total, warmTotal)
	}
}

// TestStoreFlagValidation pins the -store flag's loud failure modes: a
// malformed URL and an unreachable server — anywhere in a replica list —
// are startup errors, not silently cold caches.
func TestStoreFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-store", "not a url", "-only", "E2"}, &buf); err == nil {
		t.Fatal("malformed -store URL accepted")
	}
	if err := run([]string{"-store", "http://127.0.0.1:1", "-only", "E2"}, &buf); err == nil {
		t.Fatal("unreachable -store URL accepted")
	}
	healthy, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	ts := httptest.NewServer(remote.NewServer(healthy))
	defer ts.Close()
	if err := run([]string{"-store", ts.URL + ",http://127.0.0.1:1", "-only", "E2"}, &buf); err == nil {
		t.Fatal("replica list with an unreachable member accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("error paths wrote to the data stream: %q", buf.String())
	}
}
