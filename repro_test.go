package repro_test

import (
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/internal/construct"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	algo, err := repro.NewAlgorithm(repro.AlgoYangAnderson, 6)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := repro.RunCanonical(algo, repro.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.VerifyMutex(algo, exec); err != nil {
		t.Fatal(err)
	}
	rep, err := repro.MeasureCost(algo, exec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SC <= 0 || rep.SC > rep.SharedAccesses {
		t.Fatalf("implausible report %v", rep)
	}
	proof, err := repro.Prove(algo, []int{5, 0, 3, 1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := proof.Decoded.EntryOrder(); got[0] != 5 || got[5] != 2 {
		t.Fatalf("entry order %v does not follow the permutation", got)
	}
}

// TestAllAlgorithmsRegistered checks the facade registry includes the RMW
// extension algorithms.
func TestAllAlgorithmsRegistered(t *testing.T) {
	names := strings.Join(repro.Algorithms(), ",")
	for _, want := range []string{repro.AlgoYangAnderson, repro.AlgoPeterson, repro.AlgoBakery, repro.AlgoNaive, repro.AlgoTAS, repro.AlgoMCS} {
		if !strings.Contains(names, want) {
			t.Errorf("algorithm %q not registered (have %s)", want, names)
		}
	}
}

// TestRMWAlgorithmsSolveMutex runs the extension-model locks under several
// schedulers.
func TestRMWAlgorithmsSolveMutex(t *testing.T) {
	for _, name := range []string{repro.AlgoTAS, repro.AlgoMCS} {
		for _, n := range []int{1, 2, 3, 8, 16} {
			for _, sched := range []string{"round-robin", "random", "progress-first"} {
				algo, err := repro.NewAlgorithm(name, n)
				if err != nil {
					t.Fatal(err)
				}
				s, err := repro.NewSchedulerByName(sched, n, 77)
				if err != nil {
					t.Fatal(err)
				}
				exec, err := repro.RunCanonical(algo, s)
				if err != nil {
					t.Fatalf("%s n=%d %s: %v", name, n, sched, err)
				}
				if err := repro.VerifyMutex(algo, exec); err != nil {
					t.Fatalf("%s n=%d %s: %v", name, n, sched, err)
				}
			}
		}
	}
}

// TestProveRejectsRMW: the lower-bound pipeline is register-only; the
// paper's construction does not apply to RMW primitives.
func TestProveRejectsRMW(t *testing.T) {
	algo, err := repro.NewAlgorithm(repro.AlgoMCS, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = repro.Prove(algo, []int{0, 1, 2})
	if !errors.Is(err, construct.ErrRMW) {
		t.Fatalf("want ErrRMW, got %v", err)
	}
}

// TestMCSLinearCost: the MCS lock's canonical SC cost is O(n) — the
// separation from the register-only Ω(n log n).
func TestMCSLinearCost(t *testing.T) {
	prev := 0
	for _, n := range []int{8, 16, 32, 64} {
		algo, err := repro.NewAlgorithm(repro.AlgoMCS, n)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := repro.RunCanonical(algo, repro.NewProgressFirst())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := repro.MeasureCost(algo, exec)
		if err != nil {
			t.Fatal(err)
		}
		perPassage := float64(rep.SC) / float64(n)
		t.Logf("n=%d SC=%d per-passage=%.2f", n, rep.SC, perPassage)
		if perPassage > 12 {
			t.Errorf("n=%d: MCS per-passage SC=%.2f not O(1)", n, perPassage)
		}
		if prev != 0 && rep.SC < prev {
			t.Errorf("n=%d: SC decreased from %d to %d", n, prev, rep.SC)
		}
		prev = rep.SC
	}
}

// TestSchedulerByNameErrors covers the error path.
func TestSchedulerByNameErrors(t *testing.T) {
	if _, err := repro.NewSchedulerByName("fifo", 4, 0); err == nil {
		t.Fatal("want error for unknown scheduler")
	}
}
