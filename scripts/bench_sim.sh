#!/bin/sh
# bench_sim.sh — run the simulator hot-loop benchmarks and emit
# BENCH_sim.json, the machine-readable perf baseline for the stepping
# trajectory (System.Step across step kinds, Clone, the greedy adversary's
# per-decision lookahead, a whole canonical run, the adversary's full
# quick-config schedule search cold and through a warm result store, and
# the trace-capture tax on one executed job, off vs on).
#
# Usage: scripts/bench_sim.sh [output.json]
#
# Same JSON row shape as bench_store.sh: one object per benchmark,
#   {"name":..., "pkg":..., "iterations":N, "ns_per_op":X,
#    "bytes_per_op":B, "allocs_per_op":A}
# wrapped in {"go":version, "baseline":[...], "benchmarks":[...]}. The
# "baseline" block is the pre-flattening measurement (PR 6) kept for
# comparison: when the output file already has one, it is carried over
# verbatim, so regenerating refreshes only the current rows. No timestamps
# are embedded, so reruns on the same box and code are stable modulo noise.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_sim.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

baseline=""
if [ -f "$out" ]; then
  baseline="$(awk '/^"baseline":\[/{f=1;next} /^\],/{f=0} f' "$out")"
fi

go test -run '^$' -bench 'BenchmarkSystemStep$|BenchmarkSystemStepSpin$|BenchmarkSystemClone$|BenchmarkGreedyNext$|BenchmarkCanonicalRun$|BenchmarkSearchWorst$|BenchmarkSearchWorstWarm$|BenchmarkCaptureOverhead$' -benchmem ./internal/machine ./internal/adversary ./internal/runner >"$tmp"

go_version="$(go env GOVERSION)"
awk -v go_version="$go_version" -v baseline="$baseline" '
  /^pkg:/ { pkg = $2 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")    ns = $(i-1)
      if ($i == "B/op")     bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    row = sprintf("  {\"name\":\"%s\",\"pkg\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}",
                  name, pkg, $2, ns, bytes, allocs)
    rows = rows (rows == "" ? "" : ",\n") row
  }
  END {
    printf "{\"go\":\"%s\",\n", go_version
    if (baseline != "")
      printf "\"baseline\":[\n%s\n],\n", baseline
    printf "\"benchmarks\":[\n%s\n]}\n", rows
  }
' "$tmp" >"$out"
echo "wrote $out:" >&2
cat "$out" >&2
