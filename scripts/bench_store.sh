#!/bin/sh
# bench_store.sh — run the result-store benchmarks and emit BENCH_store.json,
# the machine-readable perf baseline for the store trajectory (local
# LRU+NDJSON hot path and the remote batch/point paths over loopback).
#
# Usage: scripts/bench_store.sh [output.json]
#
# The JSON shape is one object per benchmark:
#   {"name":..., "pkg":..., "iterations":N, "ns_per_op":X,
#    "bytes_per_op":B, "allocs_per_op":A}
# wrapped in {"go":version, "benchmarks":[...]}. Compare files across
# commits with any JSON diff; no timestamps are embedded, so reruns on the
# same box and code are stable modulo benchmark noise.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_store.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkStoreGetPut$' -benchmem ./internal/store >"$tmp"
go test -run '^$' -bench 'BenchmarkRemoteMGet$|BenchmarkRemoteGet$|BenchmarkRemoteMPut$|BenchmarkRemotePut$' -benchmem ./internal/remote >>"$tmp"

go_version="$(go env GOVERSION)"
awk -v go_version="$go_version" '
  /^pkg:/ { pkg = $2 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")    ns = $(i-1)
      if ($i == "B/op")     bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    row = sprintf("  {\"name\":\"%s\",\"pkg\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}",
                  name, pkg, $2, ns, bytes, allocs)
    rows = rows (rows == "" ? "" : ",\n") row
  }
  END {
    printf "{\"go\":\"%s\",\"benchmarks\":[\n%s\n]}\n", go_version, rows
  }
' "$tmp" >"$out"
echo "wrote $out:" >&2
cat "$out" >&2
