#!/usr/bin/env bash
# lint.sh — build reprolint and run it over the whole repo as a go vet tool.
#
#   scripts/lint.sh           build the tool and lint ./...
#   scripts/lint.sh -print    build the tool and print its path (for use as
#                             `go vet -vettool=$(scripts/lint.sh -print) ./...`)
#
# reprolint speaks the vet unitchecker protocol, so `go vet -vettool` gives
# it per-package caching and the exact build configuration (tags, embedded
# files, test variants) the real build uses.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${TMPDIR:-/tmp}/reprolint"
go build -o "$bin" ./cmd/reprolint

if [[ "${1:-}" == "-print" ]]; then
    echo "$bin"
    exit 0
fi

exec go vet -vettool="$bin" ./...
