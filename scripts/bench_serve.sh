#!/usr/bin/env bash
# bench_serve.sh — measure the serving path end to end and emit
# BENCH_serve.json: a routed two-stored fleet, one experimentd mounted on
# it, and cmd/loadgen driving Poisson-burst arrivals with Zipf-skewed hot
# units. Two measured passes over the same seeded request sequence:
#
#   cold  — empty fleet: misses execute, the hit rate is the skew's work
#   warm  — same sequence again: everything is served from the fleet
#
# Usage: scripts/bench_serve.sh [output.json]
#
# The output is {"go":version, "cold":{...}, "warm":{...}} where each row
# is cmd/loadgen's -json report (p50/p90/p99 latency, hit rate, 429 and
# coalescing counts). Latencies are machine-dependent like every BENCH_*
# file; the hit-rate and rejection fields are the load-bearing ones. No
# timestamps are embedded.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_serve.json}"
work="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/stored" ./cmd/stored
go build -o "$work/experimentd" ./cmd/experimentd
go build -o "$work/loadgen" ./cmd/loadgen

scrape_addr() { # logfile — first line is "<prog>: listening on http://ADDR"
  for _ in $(seq 1 50); do
    addr="$(head -1 "$1" 2>/dev/null | sed -n 's/.*listening on //p')"
    [ -n "$addr" ] && { echo "$addr"; return; }
    sleep 0.1
  done
  echo "bench_serve: $1 never published an address" >&2
  exit 1
}

# --- the fleet: two stored instances, hash-routed by the client ---------
"$work/stored" -dir "$work/s1" -addr 127.0.0.1:0 >"$work/s1.log" 2>&1 &
pids+=($!)
"$work/stored" -dir "$work/s2" -addr 127.0.0.1:0 >"$work/s2.log" 2>&1 &
pids+=($!)
u1="$(scrape_addr "$work/s1.log")"
u2="$(scrape_addr "$work/s2.log")"

# --- the service: one experimentd over the routed fleet -----------------
"$work/experimentd" -addr 127.0.0.1:0 -store "$u1,$u2" -queue 256 >"$work/d.log" 2>&1 &
pids+=($!)
target="$(scrape_addr "$work/d.log")"

echo "bench_serve: fleet $u1 + $u2, experimentd $target" >&2

LOAD="-target $target -requests 400 -rate 300 -burst 6 -skew 1.2 -seed 20060723 -json"
# shellcheck disable=SC2086
cold="$("$work/loadgen" $LOAD)"
echo "bench_serve: cold pass done" >&2
# shellcheck disable=SC2086
warm="$("$work/loadgen" $LOAD)"
echo "bench_serve: warm pass done" >&2

go_version="$(go env GOVERSION)"
printf '{"go":"%s",\n"cold":%s,\n"warm":%s}\n' "$go_version" "$cold" "$warm" >"$out"
echo "wrote $out:" >&2
cat "$out" >&2
