package repro_test

import (
	"fmt"

	"repro"
)

// ExampleProve runs the paper's full proof pipeline for one permutation:
// the processes are forced to enter their critical sections in exactly the
// requested order, and the execution round-trips through the O(C)-bit
// encoding.
func ExampleProve() {
	algo, err := repro.NewAlgorithm(repro.AlgoYangAnderson, 4)
	if err != nil {
		panic(err)
	}
	proof, err := repro.Prove(algo, []int{2, 0, 3, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("entry order:", proof.Decoded.EntryOrder())
	fmt.Println("cost:", proof.Cost)
	// Output:
	// entry order: [2 0 3 1]
	// cost: 48
}

// ExampleRunCanonical simulates a canonical execution and verifies it.
func ExampleRunCanonical() {
	algo, err := repro.NewAlgorithm(repro.AlgoBakery, 3)
	if err != nil {
		panic(err)
	}
	exec, err := repro.RunCanonical(algo, repro.NewSolo([]int{1, 2, 0}))
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", repro.VerifyMutex(algo, exec) == nil)
	fmt.Println("entries:", exec.EntryOrder())
	// Output:
	// verified: true
	// entries: [1 2 0]
}

// ExampleMeasureCost shows the state change model discounting busywait
// reads relative to the raw access count.
func ExampleMeasureCost() {
	algo, err := repro.NewAlgorithm(repro.AlgoYangAnderson, 4)
	if err != nil {
		panic(err)
	}
	exec, err := repro.RunCanonical(algo, repro.NewRoundRobin())
	if err != nil {
		panic(err)
	}
	report, err := repro.MeasureCost(algo, exec)
	if err != nil {
		panic(err)
	}
	fmt.Println("SC cost below raw accesses:", report.SC < report.SharedAccesses)
	// Output:
	// SC cost below raw accesses: true
}

// ExampleProveAll demonstrates the counting argument at n = 3: all 3! = 6
// permutations decode to distinct executions.
func ExampleProveAll() {
	algo, err := repro.NewAlgorithm(repro.AlgoYangAnderson, 3)
	if err != nil {
		panic(err)
	}
	stats, err := repro.ProveAll(algo)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d permutations, %d distinct executions\n", stats.Perms, stats.Distinct)
	fmt.Printf("max encoding %d bits ≥ log2(3!) = %.1f bits\n", stats.MaxBits, repro.InformationBound(3))
	// Output:
	// 6 permutations, 6 distinct executions
	// max encoding 237 bits ≥ log2(3!) = 2.6 bits
}
