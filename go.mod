module repro

// Zero requirements, deliberately: the Go toolchain is the only
// dependency, so builds are offline and hermetic with nothing to
// vendor or audit. Even the vet-style analyzer suite (cmd/reprolint,
// internal/lint) is stdlib-only — it implements the slice of
// go/analysis it needs rather than importing golang.org/x/tools.
// Rationale and the escape hatch are in ROADMAP.md ("Dependency
// policy").

go 1.24
