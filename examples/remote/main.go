// Remote: the fleet-shared result store end to end, in one process. Two
// stored-style servers (the same handler cmd/stored mounts) serve two
// authoritative store instances on loopback; independent "worker
// processes" — separate clients with their own local LRU tiers — run the
// same batch of simulations against them through a hash-routing fleet
// tier (what `-store URL1,URL2` mounts). The first worker pays for every
// simulation and uploads the results in batched mputs; the second worker
// executes nothing: its whole batch is served by one gzipped mget per
// replica, misses=0. Each instance holds a disjoint slice of the key
// space, so the fleet cache scales by adding instances.
//
// The multi-process version of this walkthrough (real stored binaries,
// sharded cmd/experiments runs) is in examples/remote/README.md.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/machine"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/store"
)

// serveStored starts one stored-style instance on loopback, returning its
// URL and the authoritative store behind it.
func serveStored() (string, *store.Store) {
	authoritative := store.NewMemory(0) // cmd/stored uses an NDJSON dir; memory keeps the example self-contained
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, remote.NewServer(authoritative))
	return "http://" + ln.Addr().String(), authoritative
}

func main() {
	// --- the fleet tier: what `stored -dir DIR` runs, twice ---------------
	url1, auth1 := serveStored()
	url2, auth2 := serveStored()
	urls := []string{url1, url2}
	fmt.Printf("stored fleet serving on %s\n\n", strings.Join(urls, " and "))

	// --- the workload: a grid of canonical simulations ------------------
	var jobs []runner.Job
	for _, algo := range []string{"yang-anderson", "bakery", "peterson"} {
		for _, n := range []int{4, 6, 8} {
			jobs = append(jobs, runner.Job{Algo: algo, N: n, Sched: machine.RoundRobinSpec()})
		}
	}

	// --- two workers, two processes' worth of state ---------------------
	for worker := 1; worker <= 2; worker++ {
		// remote.Mount with a comma-separated list builds the Router over
		// one pinged client per instance — the CLIs' `-store URL1,URL2`.
		st, cls, err := remote.Mount("", strings.Join(urls, ","))
		if err != nil {
			log.Fatal(err)
		}
		eng := runner.NewCached(runner.New(4), st)
		total := 0
		if err := eng.Run(jobs, func(r runner.Result) error {
			if r.Err != nil {
				return r.Err
			}
			total += r.Report.SC
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker %d: total SC over %d jobs = %d\n", worker, len(jobs), total)
		fmt.Printf("worker %d: cache %s\n", worker, st.Stats())
		for i, cl := range cls {
			cs := cl.Stats()
			fmt.Printf("worker %d: replica %d gets=%d puts=%d\n", worker, i, cs.Gets, cs.Puts)
		}
		fmt.Println()
		st.Close()
	}

	fmt.Printf("fleet: %d + %d entries — disjoint slices of one key space\n", auth1.Len(), auth2.Len())
	fmt.Println("worker 2 reported misses=0: the routed fleet store made its run free.")
}
