// Remote: the fleet-shared result store end to end, in one process. A
// stored-style server (the same handler cmd/stored mounts) serves one
// authoritative store on loopback; two independent "worker processes" —
// here, two separate clients with their own local LRU tiers — run the same
// batch of simulations against it. The first worker pays for every
// simulation and uploads the results; the second worker executes nothing:
// its whole batch is served by one gzipped mget, misses=0.
//
// The multi-process version of this walkthrough (real stored binary, two
// sharded cmd/experiments runs) is in examples/remote/README.md.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/machine"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/store"
)

func main() {
	// --- the service: what `stored -dir DIR` runs -----------------------
	authoritative := store.NewMemory(0) // cmd/stored uses an NDJSON dir; memory keeps the example self-contained
	srv := remote.NewServer(authoritative)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	url := "http://" + ln.Addr().String()
	fmt.Printf("stored serving on %s\n\n", url)

	// --- the workload: a grid of canonical simulations ------------------
	var jobs []runner.Job
	for _, algo := range []string{"yang-anderson", "bakery", "peterson"} {
		for _, n := range []int{4, 6, 8} {
			jobs = append(jobs, runner.Job{Algo: algo, N: n, Sched: machine.RoundRobinSpec()})
		}
	}

	// --- two workers, two processes' worth of state ---------------------
	for worker := 1; worker <= 2; worker++ {
		cl, err := remote.NewClient(url, nil)
		if err != nil {
			log.Fatal(err)
		}
		st := store.New(0, cl) // each worker has its own LRU; the backend is shared
		eng := runner.NewCached(runner.New(4), st)
		total := 0
		if err := eng.Run(jobs, func(r runner.Result) error {
			if r.Err != nil {
				return r.Err
			}
			total += r.Report.SC
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker %d: total SC over %d jobs = %d\n", worker, len(jobs), total)
		fmt.Printf("worker %d: cache %s\n", worker, st.Stats())
		cs := cl.Stats()
		fmt.Printf("worker %d: remote gets=%d puts=%d coalesced=%d\n\n", worker, cs.Gets, cs.Puts, cs.Coalesced)
		st.Close()
	}

	fmt.Printf("server: %d entries, %d conflicts (content-addressed writers never conflict)\n",
		authoritative.Len(), srv.Conflicts())
	fmt.Println("worker 2 reported misses=0: the fleet store made its run free.")
}
