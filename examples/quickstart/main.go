// Quickstart: run a mutual exclusion algorithm on the simulator, measure
// its cost in the paper's state change model, and run the lower-bound proof
// pipeline for one permutation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 8

	// 1. Simulate a canonical execution (every process enters its critical
	//    section exactly once) of Yang–Anderson under a fair scheduler.
	algo, err := repro.NewAlgorithm(repro.AlgoYangAnderson, n)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := repro.RunCanonical(algo, repro.NewRoundRobin())
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyMutex(algo, exec); err != nil {
		log.Fatal(err)
	}
	report, err := repro.MeasureCost(algo, exec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical execution of %s:\n  %v\n", algo.Name(), report)
	fmt.Printf("  SC/(n·lg n) = %.2f   (tight: O(n log n))\n\n", float64(report.SC)/repro.NLogN(n))

	// 2. Run the paper's proof pipeline for one permutation: Construct the
	//    invisible-ordering execution, Encode it in O(C) bits, Decode it
	//    back — with Theorems 5.5, 6.2, 7.4 and Lemma 6.1 checked.
	pi := []int{3, 1, 4, 0, 2, 6, 5, 7}
	proof, err := repro.Prove(algo, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proof pipeline for pi=%v:\n", pi)
	fmt.Printf("  metasteps      %d\n", proof.Result.Set.Len())
	fmt.Printf("  cost C(alpha)  %d state changes\n", proof.Cost)
	fmt.Printf("  |E_pi|         %d bits (%.2f bits per unit cost)\n", proof.Encoding.BitLen, proof.BitsPerCost())
	fmt.Printf("  entry order    %v  (forced to equal pi)\n", proof.Decoded.EntryOrder())
	fmt.Printf("  info bound     log2(%d!) = %.1f bits\n", n, repro.InformationBound(n))
}
