// Encoding: walk the information-theoretic heart of the proof. For a small
// n, run the pipeline for every permutation of S_n, show each encoding E_π
// (the paper's table of R/W/PR/SR/C cells with winner signatures), verify
// the decoder reconstructs each execution from the bits alone, and compare
// the measured bit lengths with the log₂(n!) floor that forces Ω(n log n).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/perm"
)

func main() {
	var (
		algoName = flag.String("algo", repro.AlgoYangAnderson, "algorithm")
		n        = flag.Int("n", 3, "number of processes (keep small: prints all n! encodings)")
	)
	flag.Parse()
	if *n > 5 {
		log.Fatalf("n=%d would print %d encodings; use n <= 5", *n, perm.Factorial(*n))
	}

	algo, err := repro.NewAlgorithm(*algoName, *n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline over all of S_%d for %s\n\n", *n, algo.Name())
	maxBits, sumBits, count := 0, 0, 0
	perm.ForEach(*n, func(pi []int) bool {
		proof, err := repro.Prove(algo, append([]int(nil), pi...))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pi=%v  cost=%d  |E|=%d bits\n", pi, proof.Cost, proof.Encoding.BitLen)
		fmt.Printf("  E = %s\n", proof.Encoding)
		count++
		sumBits += proof.Encoding.BitLen
		if proof.Encoding.BitLen > maxBits {
			maxBits = proof.Encoding.BitLen
		}
		return true
	})

	lg := repro.InformationBound(*n)
	fmt.Printf("\n%d permutations, %d distinct encodings required\n", count, count)
	fmt.Printf("mean |E| = %.1f bits, max |E| = %d bits\n", float64(sumBits)/float64(count), maxBits)
	fmt.Printf("information floor log2(%d!) = %.1f bits — any decoder-unique encoding must reach it,\n", *n, lg)
	fmt.Printf("and by Theorem 6.2 the execution cost is within a constant of the bits: Omega(n log n).\n")
}
