// Adversary: demonstrate the construction step (Section 5). For any
// permutation you choose, Construct builds an execution of the algorithm in
// which the processes are forced to enter their critical sections in
// exactly that order — while every process stays invisible to the processes
// ordered below it. The demo shows the metastep structure: which writes got
// hidden inside other processes' write metasteps, and which reads became
// prereads.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro"
	"repro/internal/construct"
	"repro/internal/metastep"
)

func main() {
	var (
		algoName = flag.String("algo", repro.AlgoYangAnderson, "algorithm")
		permSpec = flag.String("perm", "2,0,3,1", "permutation of 0..n-1 (n is its length)")
	)
	flag.Parse()

	pi, err := parse(*permSpec)
	if err != nil {
		log.Fatal(err)
	}
	algo, err := repro.NewAlgorithm(*algoName, len(pi))
	if err != nil {
		log.Fatal(err)
	}

	res, err := construct.Construct(algo, pi)
	if err != nil {
		log.Fatal(err)
	}
	alpha, err := res.Linearize()
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyMutex(algo, alpha); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm %s, permutation %v\n", algo.Name(), pi)
	fmt.Printf("the construction produced %d metasteps; the canonical linearization has %d steps\n",
		res.Set.Len(), len(alpha))
	fmt.Printf("critical sections entered in order: %v\n\n", alpha.EntryOrder())

	hidden, prereads, multi := 0, 0, 0
	for id := 0; id < res.Set.Len(); id++ {
		m := res.Set.Meta(metastep.ID(id))
		if m.Type == metastep.TypeWrite {
			hidden += len(m.Writes) + len(m.Reads)
			prereads += len(m.Pread)
			if m.Size() > 1 {
				multi++
			}
		}
	}
	fmt.Printf("hiding machinery: %d steps hidden inside %d multi-process write metasteps, %d prereads\n",
		hidden, multi, prereads)
	fmt.Println("\nmulti-process write metasteps (the invisibility gadgets):")
	for id := 0; id < res.Set.Len(); id++ {
		m := res.Set.Meta(metastep.ID(id))
		if m.Type == metastep.TypeWrite && m.Size() > 1 {
			fmt.Printf("  %v\n", m)
		}
	}

	fmt.Println("\nswapping two processes in the permutation provably changes the execution:")
	pi2 := append([]int(nil), pi...)
	pi2[0], pi2[1] = pi2[1], pi2[0]
	res2, err := construct.Construct(algo, pi2)
	if err != nil {
		log.Fatal(err)
	}
	alpha2, err := res2.Linearize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pi=%v -> entries %v\n", pi, alpha.EntryOrder())
	fmt.Printf("  pi=%v -> entries %v\n", pi2, alpha2.EntryOrder())
}

func parse(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	pi := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad permutation entry %q", p)
		}
		pi[i] = v
	}
	return pi, nil
}
