// Tournament: compare the canonical-execution cost of every algorithm in
// the repository across n, under two schedulers — the positioning picture
// from the paper's Section 2: bakery Θ(n²), tournaments O(n log n), and
// the RMW-based MCS lock O(n), the gap registers provably cannot close.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	algos := []string{
		repro.AlgoMCS, repro.AlgoTAS,
		repro.AlgoYangAnderson, repro.AlgoPeterson, repro.AlgoBakery,
	}
	ns := []int{4, 8, 16, 32, 64}

	for _, schedName := range []string{"progress-first", "round-robin"} {
		fmt.Printf("=== scheduler: %s ===\n", schedName)
		fmt.Printf("%-14s", "algo \\ n")
		for _, n := range ns {
			fmt.Printf("%10d", n)
		}
		fmt.Println("   (SC cost; ratio to n·lg n)")
		for _, name := range algos {
			fmt.Printf("%-14s", name)
			for _, n := range ns {
				algo, err := repro.NewAlgorithm(name, n)
				if err != nil {
					log.Fatal(err)
				}
				sched, err := repro.NewSchedulerByName(schedName, n, 42)
				if err != nil {
					log.Fatal(err)
				}
				exec, err := repro.RunCanonical(algo, sched)
				if err != nil {
					log.Fatal(err)
				}
				rep, err := repro.MeasureCost(algo, exec)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%10d", rep.SC)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("reading the table: bakery's column ratios grow linearly (quadratic total),")
	fmt.Println("yang-anderson's stay near-constant (n log n), mcs's shrink (linear).")
}
