// Tournament: compare the canonical-execution cost of every algorithm in
// the repository across n, under two schedulers — the positioning picture
// from the paper's Section 2: bakery Θ(n²), tournaments O(n log n), and
// the RMW-based MCS lock O(n), the gap registers provably cannot close.
// The closing section turns the adversary from a fixed policy into a
// search: internal/adversary hunts for schedules costlier than any
// hand-written one (the full grid lives in cmd/tournament).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/adversary"
	"repro/internal/runner"
)

func main() {
	algos := []string{
		repro.AlgoMCS, repro.AlgoTAS,
		repro.AlgoYangAnderson, repro.AlgoPeterson, repro.AlgoBakery,
	}
	ns := []int{4, 8, 16, 32, 64}

	for _, schedName := range []string{"progress-first", "round-robin"} {
		fmt.Printf("=== scheduler: %s ===\n", schedName)
		fmt.Printf("%-14s", "algo \\ n")
		for _, n := range ns {
			fmt.Printf("%10d", n)
		}
		fmt.Println("   (SC cost; ratio to n·lg n)")
		for _, name := range algos {
			fmt.Printf("%-14s", name)
			for _, n := range ns {
				algo, err := repro.NewAlgorithm(name, n)
				if err != nil {
					log.Fatal(err)
				}
				sched, err := repro.NewSchedulerByName(schedName, n, 42)
				if err != nil {
					log.Fatal(err)
				}
				exec, err := repro.RunCanonical(algo, sched)
				if err != nil {
					log.Fatal(err)
				}
				rep, err := repro.MeasureCost(algo, exec)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%10d", rep.SC)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("reading the table: bakery's column ratios grow linearly (quadratic total),")
	fmt.Println("yang-anderson's stay near-constant (n log n), mcs's shrink (linear).")

	fmt.Println("\n=== adversary search: worse than any fixed policy ===")
	eng := runner.New(0)
	for _, name := range []string{repro.AlgoYangAnderson, repro.AlgoBakery} {
		found, err := adversary.SearchWorst(eng, name, 8, adversary.Quick())
		if err != nil {
			log.Fatal(err)
		}
		fixed, ok := found.FixedBest()
		if !ok {
			log.Fatalf("%s: no fixed policy completed a canonical run", name)
		}
		fmt.Printf("%-14s n=8  best fixed policy %-14s SC=%-5d  searched worst SC=%-5d (%s, %d candidates)\n",
			name, fixed.Name, fixed.Report.SC, found.Report.SC, found.Origin, found.Evaluated)
	}
	fmt.Println("the searched schedule replays exactly: hand found.Spec to a fresh run to reproduce it.")
}
